// Package j2kcell is a from-scratch JPEG2000 still-image codec in pure
// Go, together with a calibrated performance model of the Cell
// Broadband Engine that reproduces Kang & Bader, "Optimizing JPEG2000
// Still Image Encoding on the Cell Broadband Engine" (ICPP 2008).
//
// Three encoders share one codec core and emit byte-identical
// codestreams:
//
//   - Encode: the sequential reference (JasPer-equivalent pipeline);
//   - EncodeParallel: a native Go encoder that runs the whole pipeline
//     — MCT, DWT, quantization, and Tier-1 — stage-parallel across a
//     goroutine worker pool, the Go analogue of the paper's
//     whole-pipeline SPE parallelization, and the practical encoder
//     for library users;
//   - Simulate: the paper's parallelization executed on the simulated
//     Cell/B.E. (internal/core), returning the modeled execution
//     profile used to regenerate the paper's figures.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results.
package j2kcell

import (
	"context"
	"errors"
	"runtime"

	"j2kcell/internal/codec"
	"j2kcell/internal/core"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/jp2"
	"j2kcell/internal/workload"
)

// Image is a planar integer image (full-resolution components).
type Image = imgmodel.Image

// Plane is one image component.
type Plane = imgmodel.Plane

// Options selects the coding path: Lossless (RCT + 5/3) or lossy
// (ICT + 9/7 + deadzone quantization), decomposition levels, code block
// size, and the lossy rate target as a fraction of the raw size.
type Options = codec.Options

// Stats summarizes an encode.
type Stats = codec.Stats

// NewImage allocates a w×h image with n zeroed components of the given
// bit depth.
func NewImage(w, h, ncomp, depth int) *Image { return imgmodel.NewImage(w, h, ncomp, depth) }

// TestImage renders the deterministic synthetic "watch dial" workload
// used throughout the benchmarks (a stand-in for the paper's 28.3 MB
// waltham_dial.bmp).
func TestImage(w, h int, seed uint32) *Image { return workload.Dial(w, h, seed, 5) }

// FaultError reports a panic contained inside a codec worker
// goroutine: the pipeline stage, worker lane, and job it escaped from.
// The operation that contained it failed cleanly — no goroutine
// leaked, pooled buffers were returned. It signals a codec bug (or an
// injected test fault), never bad input.
type FaultError = codec.FaultError

// FormatError reports a malformed, truncated, or limit-exceeding
// codestream; retrying cannot help. The underlying parse error is
// reachable via errors.Unwrap.
type FormatError = codec.FormatError

// Limits bounds what the decoder accepts from an untrusted stream's
// main header (dimensions, components, levels, tiles, pixel budget),
// enforced before any allocation sized from header fields.
type Limits = codec.Limits

// DefaultLimits returns the header limits applied when DecodeOptions
// carries none.
func DefaultLimits() Limits { return codec.DefaultLimits() }

// Encode compresses img into a JPEG2000 codestream sequentially.
func Encode(img *Image, opt Options) ([]byte, *Stats, error) {
	res, err := codec.Encode(img, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Data, &res.Stats, nil
}

// EncodeContext is Encode bound to a context: cancellation or deadline
// expiry stops the encode between work-queue jobs, releases pooled
// buffers, and returns ctx.Err() unwrapped (errors.Is-compatible with
// context.Canceled / context.DeadlineExceeded).
func EncodeContext(ctx context.Context, img *Image, opt Options) ([]byte, *Stats, error) {
	res, err := codec.EncodeContext(ctx, img, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Data, &res.Stats, nil
}

// Decode reconstructs an image from a raw codestream or a JP2 file
// produced by any of this package's encoders (auto-detected).
func Decode(data []byte) (*Image, error) { return codec.Decode(data) }

// DecodeContext is Decode bound to a context: cancellation stops the
// decode between packets and Tier-1 block jobs and returns ctx.Err()
// unwrapped.
func DecodeContext(ctx context.Context, data []byte) (*Image, error) {
	return codec.DecodeContext(ctx, data)
}

// EncodeJP2 compresses img and wraps the codestream in the JP2 file
// container (signature, file-type, header and codestream boxes) — the
// bytes to write to a .jp2 file. Decode accepts both formats.
func EncodeJP2(img *Image, opt Options) ([]byte, *Stats, error) {
	data, stats, err := Encode(img, opt)
	if err != nil {
		return nil, nil, err
	}
	return WrapJP2(img, data), stats, nil
}

// WrapJP2 wraps an already-encoded codestream for img in the JP2 file
// container.
func WrapJP2(img *Image, codestream []byte) []byte {
	return jp2.Wrap(jp2.Info{
		W: img.W, H: img.H, NComp: len(img.Comps), Depth: img.Depth,
		SRGB: len(img.Comps) == 3,
	}, codestream)
}

// DecodeOptions selects progressive decoding subsets: MaxLayers
// truncates the quality progression, DiscardLevels the resolution
// progression, Region decodes a spatial window.
type DecodeOptions = codec.DecodeOptions

// Rect is an image-space rectangle (used for window decoding and tile
// geometry).
type Rect = codec.Rect

// DecodeWith reconstructs an image from a subset of the progression —
// fewer quality layers (for streams encoded with Options.LayerRates)
// or fewer resolution levels (any stream).
func DecodeWith(data []byte, opt DecodeOptions) (*Image, error) {
	return codec.DecodeWith(data, opt)
}

// DecodeWithContext is DecodeWith bound to a context.
func DecodeWithContext(ctx context.Context, data []byte, opt DecodeOptions) (*Image, error) {
	return codec.DecodeWithContext(ctx, data, opt)
}

// DamageReport is the structured outcome of a best-effort decode: what
// was lost (per tile and per code block, with worst-case affected
// regions), how many resyncs recovery needed, and how much of the
// payload was salvaged.
type DamageReport = codec.DamageReport

// TileDamage is one damaged tile's loss map within a DamageReport.
type TileDamage = codec.TileDamage

// BlockLoss identifies one concealed code block within a TileDamage.
type BlockLoss = codec.BlockLoss

// DecodeResilient decodes a possibly damaged codestream as far as
// possible: detection failures, parse errors, contained faults and
// truncation each discard only the affected code block, packet or
// tile-part (concealed as zero coefficients), resynchronizing on SOP
// and SOT markers. It is total — any input yields an image and a
// report, never an error or panic. Streams encoded with
// Options.Resilience carry the markers and per-pass protection that
// make damage detectable and containment fine-grained.
func DecodeResilient(data []byte, opt DecodeOptions) (*Image, *DamageReport) {
	return codec.DecodeResilient(data, opt)
}

// DecodeResilientContext is DecodeResilient bound to a context; err is
// non-nil only for cancellation or admission rejection, never for
// stream damage.
func DecodeResilientContext(ctx context.Context, data []byte, opt DecodeOptions) (*Image, *DamageReport, error) {
	return codec.DecodeResilientContext(ctx, data, opt)
}

// DecodeParallel decodes with the full inverse chain — Tier-1 block
// decoding in partitions sized from each block's coded length,
// dequantization, the multi-level inverse DWT, and the inverse
// MCT/level shift — spread across `workers` goroutines (0 selects
// GOMAXPROCS), mirroring EncodeParallel's stage pipeline. Tiled
// streams parallelize across tiles. Output is pixel-identical to
// Decode for every worker count.
func DecodeParallel(data []byte, workers int) (*Image, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return codec.DecodeWith(data, codec.DecodeOptions{Workers: workers})
}

// EncodeParallel compresses img with every pipeline stage — merged
// level shift + component transform, multi-level DWT, quantization,
// and Tier-1 block coding — spread across `workers` goroutines
// (workers <= 0 selects GOMAXPROCS). Untiled images parallelize
// within each stage (row stripes and cache-line column groups, with
// quantization fused into the Tier-1 work queue on the lossy path);
// tiled images parallelize across tiles. The output is byte-identical
// to Encode for every worker count.
func EncodeParallel(img *Image, opt Options, workers int) ([]byte, *Stats, error) {
	return EncodeParallelContext(context.Background(), img, opt, workers)
}

// EncodeParallelContext is EncodeParallel bound to a context:
// cancellation stops the stage work queues within at most one
// outstanding job per worker and returns ctx.Err() unwrapped.
func EncodeParallelContext(ctx context.Context, img *Image, opt Options, workers int) ([]byte, *Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := validate(img); err != nil {
		return nil, nil, err
	}
	res, err := codec.EncodeParallelContext(ctx, img, opt, workers)
	if err != nil {
		return nil, nil, err
	}
	return res.Data, &res.Stats, nil
}

// Scheduler is the process-wide worker pool that multiplexes the job
// streams of concurrent encodes and decodes onto ~GOMAXPROCS
// goroutines (DESIGN.md §12). Multi-worker operations use the default
// scheduler automatically; bind an explicit one with WithScheduler to
// isolate a tenant or shrink the pool, or opt out entirely with
// WithPerCallPool.
type Scheduler = codec.Scheduler

// SchedConfig configures a Scheduler: pool width, admission bounds
// (MaxActive running + MaxQueue waiting before ErrOverloaded), and the
// lane-selection policy (round-robin or least-remaining-work).
type SchedConfig = codec.SchedConfig

// SchedStats is a snapshot of a scheduler's lanes, queue, and
// fairness counters.
type SchedStats = codec.SchedStats

// ErrOverloaded is returned by the parallel encode/decode entry points
// when the shared scheduler's admission queue is full. The operation
// was never started; shed load or retry with backoff.
var ErrOverloaded = codec.ErrOverloaded

// NewScheduler builds an isolated scheduler (zero config fields take
// defaults: GOMAXPROCS workers, 8×workers active, 4× that queued).
func NewScheduler(cfg SchedConfig) *Scheduler { return codec.NewScheduler(cfg) }

// WithScheduler binds operations started under ctx to s (nil selects
// per-call worker pools).
func WithScheduler(ctx context.Context, s *Scheduler) context.Context {
	return codec.WithScheduler(ctx, s)
}

// WithPerCallPool opts operations under ctx out of the shared
// scheduler: each operation spawns its own worker goroutines, the
// pre-scheduler behavior. Benchmarks use it to A/B the two modes.
func WithPerCallPool(ctx context.Context) context.Context {
	return codec.WithPerCallPool(ctx)
}

// SchedulerStats snapshots the process-default shared scheduler.
func SchedulerStats() SchedStats { return codec.DefaultScheduler().Stats() }

var (
	errEmptyImage = errors.New("j2kcell: empty image")
	errGeometry   = errors.New("j2kcell: component geometry mismatch (subsampling unsupported)")
)

func validate(img *Image) error {
	if img == nil || img.W <= 0 || img.H <= 0 || len(img.Comps) == 0 {
		return errEmptyImage
	}
	for _, p := range img.Comps {
		if p.W != img.W || p.H != img.H {
			return errGeometry
		}
	}
	return nil
}

// SimConfig configures a simulated Cell/B.E. encode: the machine
// (chips, SPEs, PPE threads), the codec options, and the tuning knobs
// the paper's ablations sweep (buffering depth, chunk width, fused vs
// naive lifting, work queue vs static Tier-1, PPE Tier-1 participation,
// fixed-point 9/7 pricing).
type SimConfig = core.Config

// SimResult is a simulated encode: the codestream (byte-identical to
// Encode) plus the modeled cycles, per-stage breakdown and DMA traffic.
type SimResult = core.Result

// DefaultSimConfig returns a single-chip machine with n SPEs.
func DefaultSimConfig(nSPE int, opt Options) SimConfig { return core.DefaultConfig(nSPE, opt) }

// Simulate runs the paper's parallel encoder on the modeled Cell/B.E.
func Simulate(img *Image, cfg SimConfig) (*SimResult, error) { return core.Encode(img, cfg) }
