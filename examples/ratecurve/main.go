// Ratecurve sweeps the PCRD rate target and prints the resulting
// rate-distortion curve — the operating characteristic a compression
// engineer tunes against. Quality must rise monotonically with rate;
// actual size must respect every budget.
package main

import (
	"fmt"
	"log"
	"runtime"

	"j2kcell"
)

func main() {
	img := j2kcell.TestImage(768, 768, 7)
	raw := img.W * img.H * len(img.Comps)
	fmt.Printf("rate-distortion sweep on %dx%d (%d raw bytes)\n", img.W, img.H, raw)
	fmt.Printf("%-8s %-12s %-10s %-10s %-10s\n", "target", "bytes", "bpp", "ratio", "PSNR (dB)")

	for _, rate := range []float64{0.02, 0.05, 0.10, 0.20, 0.40, 0.80} {
		data, _, err := j2kcell.EncodeParallel(img,
			j2kcell.Options{Rate: rate}, runtime.GOMAXPROCS(0))
		if err != nil {
			log.Fatal(err)
		}
		back, err := j2kcell.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
		bpp := 8 * float64(len(data)) / float64(img.W*img.H)
		fmt.Printf("%-8.2f %-12d %-10.3f %-10.1f %-10.2f\n",
			rate, len(data), bpp, float64(raw)/float64(len(data)), img.PSNR(back))
		if len(data) > int(rate*float64(raw)) {
			log.Fatalf("budget exceeded at rate %.2f", rate)
		}
	}
}
