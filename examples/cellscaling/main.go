// Cellscaling reproduces the shape of the paper's Figure 4 in a few
// seconds: the lossless encoder on the simulated Cell/B.E. at 1..16
// SPEs, reporting modeled time, speedup, and the DMA traffic the data
// decomposition scheme and fused lifting keep aligned and minimal.
package main

import (
	"fmt"
	"log"

	"j2kcell"
)

func main() {
	img := j2kcell.TestImage(768, 768, 42)
	opt := j2kcell.Options{Lossless: true}

	fmt.Printf("%-14s %-12s %-9s %-12s %-14s\n",
		"config", "model (s)", "speedup", "DMA (MB)", "DMA efficiency")
	var base float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := j2kcell.DefaultSimConfig(n, opt)
		if n == 16 {
			cfg.Cell.Chips = 2
		}
		res, err := j2kcell.Simulate(img, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sec := float64(res.Cycles) / 3.2e9
		if n == 1 {
			base = sec
		}
		eff := float64(res.DMABytes) / float64(res.DMALineBytes)
		fmt.Printf("%-14s %-12.4f %-9.2f %-12.1f %.1f%% of moved lines are payload\n",
			fmt.Sprintf("%d SPE", n), sec, base/sec, float64(res.DMABytes)/1e6, 100*eff)
	}
	fmt.Println("\nPer-stage breakdown at 8 SPEs:")
	res, err := j2kcell.Simulate(img, j2kcell.DefaultSimConfig(8, opt))
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.Stages {
		fmt.Printf("  %-12s %6.1f%%\n", st.Name, 100*float64(st.Cycles)/float64(res.Cycles))
	}
}
