// Quickstart: encode an image losslessly and at a lossy rate target,
// decode both, and verify reconstruction quality.
package main

import (
	"fmt"
	"log"

	"j2kcell"
)

func main() {
	// A deterministic synthetic photograph (or build your own Image
	// from pixel data with j2kcell.NewImage).
	img := j2kcell.TestImage(512, 512, 1)
	raw := img.W * img.H * len(img.Comps)

	// Lossless: reversible color transform + 5/3 wavelet.
	data, stats, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
	if err != nil {
		log.Fatal(err)
	}
	back, err := j2kcell.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossless: %d -> %d bytes (%.2f:1), bit exact: %v, %d code blocks\n",
		raw, len(data), float64(raw)/float64(len(data)), img.Equal(back), stats.Blocks)

	// Lossy at 10:1 — the paper's `-O mode=real -O rate=0.1`.
	data, _, err = j2kcell.Encode(img, j2kcell.Options{Rate: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	back, err = j2kcell.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossy 0.1: %d -> %d bytes (%.2f:1), PSNR %.2f dB\n",
		raw, len(data), float64(raw)/float64(len(data)), img.PSNR(back))
}
