// Archive demonstrates the two-tier archival workflow JPEG2000 was
// designed for: a bit-exact lossless master plus a small lossy access
// copy of every image, written as real files with BMP round trips.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"j2kcell"
	"j2kcell/internal/bmp"
)

func main() {
	dir, err := os.MkdirTemp("", "j2karchive")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("archive directory:", dir)

	for i, name := range []string{"dial-a", "dial-b", "dial-c"} {
		img := j2kcell.TestImage(640, 480, uint32(i+1))

		// Source "scan" as BMP.
		src := filepath.Join(dir, name+".bmp")
		f, err := os.Create(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := bmp.Encode(f, img); err != nil {
			log.Fatal(err)
		}
		f.Close()

		// Lossless master.
		master, _, err := j2kcell.EncodeParallel(img,
			j2kcell.Options{Lossless: true}, runtime.GOMAXPROCS(0))
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".master.j2c"), master, 0o644); err != nil {
			log.Fatal(err)
		}

		// 20:1 access copy.
		access, _, err := j2kcell.EncodeParallel(img,
			j2kcell.Options{Rate: 0.05}, runtime.GOMAXPROCS(0))
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".access.j2c"), access, 0o644); err != nil {
			log.Fatal(err)
		}

		// Verify the master is truly lossless against the BMP on disk.
		g, err := os.Open(src)
		if err != nil {
			log.Fatal(err)
		}
		scanned, err := bmp.Decode(g)
		g.Close()
		if err != nil {
			log.Fatal(err)
		}
		restored, err := j2kcell.Decode(master)
		if err != nil {
			log.Fatal(err)
		}
		preview, err := j2kcell.Decode(access)
		if err != nil {
			log.Fatal(err)
		}
		raw := img.W * img.H * 3
		fmt.Printf("%s: raw %d B, master %d B (%.2f:1, exact=%v), access %d B (%.1f:1, %.1f dB)\n",
			name, raw, len(master), float64(raw)/float64(len(master)), scanned.Equal(restored),
			len(access), float64(raw)/float64(len(access)), scanned.PSNR(preview))
		if !scanned.Equal(restored) {
			log.Fatal("archival master failed verification")
		}
	}
}
