// Motion encodes a sequence of frames as independent JPEG2000
// codestreams — Motion-JPEG2000, the workload of the Muta et al.
// system the paper compares against (intra-only video, used by
// digital cinema). Reports per-frame latency and aggregate throughput
// for the sequential and goroutine-parallel encoders.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"j2kcell"
)

func main() {
	const frames = 12
	w, h := 480, 270 // quarter-HD keeps the demo quick
	opt := j2kcell.Options{Rate: 0.1}

	// Pre-render the frames (a slowly rotating dial).
	seq := make([]*j2kcell.Image, frames)
	for i := range seq {
		seq[i] = j2kcell.TestImage(w, h, uint32(100+i))
	}
	raw := w * h * 3

	// Warm up (gain tables, allocator) so the comparison is fair.
	if _, _, err := j2kcell.EncodeParallel(seq[0], opt, 0); err != nil {
		log.Fatal(err)
	}

	run := func(name string, workers int) {
		start := time.Now()
		var bytes int
		for _, img := range seq {
			data, _, err := j2kcell.EncodeParallel(img, opt, workers)
			if err != nil {
				log.Fatal(err)
			}
			bytes += len(data)
		}
		el := time.Since(start)
		fmt.Printf("%-22s %2d frames in %8v  (%.1f fps, %.2f:1 compression)\n",
			name, frames, el.Round(time.Millisecond),
			float64(frames)/el.Seconds(), float64(frames*raw)/float64(bytes))
	}
	run("sequential", 1)
	run(fmt.Sprintf("parallel (%d workers)", runtime.GOMAXPROCS(0)), 0)

	// Every frame must decode to its source at the target quality.
	data, _, err := j2kcell.EncodeParallel(seq[0], opt, 0)
	if err != nil {
		log.Fatal(err)
	}
	back, err := j2kcell.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification frame PSNR: %.2f dB at %.2f:1\n",
		seq[0].PSNR(back), float64(raw)/float64(len(data)))
}
