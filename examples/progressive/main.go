// Progressive demonstrates JPEG2000's two progression axes from a
// single codestream: quality scalability (decode fewer layers of a
// multi-layer stream) and resolution scalability (decode a smaller
// image by discarding fine wavelet levels) — the features that make
// the format suit archives and streaming viewers.
package main

import (
	"fmt"
	"log"
	"runtime"

	"j2kcell"
)

func main() {
	img := j2kcell.TestImage(512, 512, 3)
	raw := img.W * img.H * len(img.Comps)

	// One stream, three embedded quality layers: 2%, 10%, 40% of raw.
	data, _, err := j2kcell.EncodeParallel(img,
		j2kcell.Options{LayerRates: []float64{0.02, 0.1, 0.4}}, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d bytes (%.1f:1), 3 quality layers\n\n",
		len(data), float64(raw)/float64(len(data)))

	fmt.Println("quality-progressive decode (same bytes, more layers):")
	for l := 1; l <= 3; l++ {
		got, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{MaxLayers: l})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d layer(s): PSNR %6.2f dB\n", l, img.PSNR(got))
	}

	fmt.Println("\nresolution-progressive decode (thumbnails without full decode):")
	for _, d := range []int{0, 1, 2, 3} {
		got, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{DiscardLevels: d})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  discard %d level(s): %4dx%-4d image\n", d, got.W, got.H)
	}

	fmt.Println("\nwindow decode (random spatial access, Tier-1 skipped elsewhere):")
	win := j2kcell.Rect{X0: 180, Y0: 200, W: 96, H: 64}
	got, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{Region: win})
	if err != nil {
		log.Fatal(err)
	}
	full, err := j2kcell.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	exact := got.Equal(full.SubImage(win.X0, win.Y0, win.W, win.H))
	fmt.Printf("  window %+v -> %dx%d image, matches full-decode crop: %v\n",
		win, got.W, got.H, exact)
}
