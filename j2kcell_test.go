package j2kcell

import (
	"runtime"
	"testing"
)

func TestPublicEncodeDecode(t *testing.T) {
	img := TestImage(120, 90, 1)
	data, stats, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != 120*90*3 {
		t.Fatalf("stats: %+v", stats)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("public API round trip failed")
	}
}

func TestEncodeParallelMatchesSequential(t *testing.T) {
	img := TestImage(200, 150, 2)
	for _, opt := range []Options{{Lossless: true}, {Rate: 0.1}} {
		seq, _, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 0} {
			par, _, err := EncodeParallel(img, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			if string(par) != string(seq) {
				t.Fatalf("workers=%d: parallel output differs", workers)
			}
		}
	}
}

func TestEncodeParallelValidation(t *testing.T) {
	if _, _, err := EncodeParallel(nil, Options{}, 2); err == nil {
		t.Fatal("nil image accepted")
	}
	img := NewImage(4, 4, 2, 8)
	img.Comps[1] = img.Comps[1].Clone()
	img.Comps[1].W = 3
	if _, _, err := EncodeParallel(img, Options{}, 2); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestSimulateMatchesEncode(t *testing.T) {
	img := TestImage(128, 96, 3)
	opt := Options{Lossless: true}
	seq, _, err := Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(img, DefaultSimConfig(8, opt))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Data) != string(seq) {
		t.Fatal("simulated output differs from sequential")
	}
	if res.Cycles <= 0 || len(res.Stages) == 0 {
		t.Fatal("simulation profile empty")
	}
}

func TestTestImageDeterministic(t *testing.T) {
	if !TestImage(64, 64, 9).Equal(TestImage(64, 64, 9)) {
		t.Fatal("TestImage not deterministic")
	}
}

func TestPublicProgressiveDecoding(t *testing.T) {
	img := TestImage(128, 128, 4)
	data, _, err := Encode(img, Options{LayerRates: []float64{0.05, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := DecodeWith(data, DecodeOptions{MaxLayers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := DecodeWith(data, DecodeOptions{MaxLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if img.PSNR(l2) < img.PSNR(l1) {
		t.Fatal("more layers must not reduce quality")
	}
	half, err := DecodeWith(data, DecodeOptions{DiscardLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if half.W != 64 || half.H != 64 {
		t.Fatalf("reduced decode %dx%d", half.W, half.H)
	}
}

func TestSimulateMultiLayerMatches(t *testing.T) {
	img := TestImage(96, 96, 6)
	opt := Options{LayerRates: []float64{0.05, 0.2}}
	seq, _, err := Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(img, DefaultSimConfig(4, opt))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Data) != string(seq) {
		t.Fatal("simulated multi-layer output differs")
	}
	par, _, err := EncodeParallel(img, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(par) != string(seq) {
		t.Fatal("goroutine-parallel multi-layer output differs")
	}
}

func TestPublicTiledEncoding(t *testing.T) {
	img := TestImage(160, 160, 8)
	opt := Options{Lossless: true, TileW: 64, TileH: 64}
	seq, _, err := Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := EncodeParallel(img, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(par) != string(seq) {
		t.Fatal("tiled parallel differs from sequential")
	}
	got, err := Decode(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("tiled round trip failed")
	}
	// The Cell model rejects tiling explicitly.
	if _, err := Simulate(img, DefaultSimConfig(2, opt)); err == nil {
		t.Fatal("Simulate accepted tiled options")
	}
}

func TestPublicRegionDecode(t *testing.T) {
	img := TestImage(128, 128, 5)
	data, _, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	win, err := DecodeWith(data, DecodeOptions{Region: Rect{X0: 40, Y0: 40, W: 48, H: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if !win.Equal(img.SubImage(40, 40, 48, 32)) {
		t.Fatal("window decode not exact on lossless stream")
	}
}

func TestPublicDecodeParallel(t *testing.T) {
	img := TestImage(160, 120, 6)
	data, _, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeParallel(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("parallel decode not exact")
	}
}

func TestJP2ContainerRoundTrip(t *testing.T) {
	img := TestImage(96, 80, 8)
	jp2Data, _, err := EncodeJP2(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(jp2Data)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("JP2 round trip not exact")
	}
	// Raw stream and wrapped stream decode identically.
	raw, _, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if string(WrapJP2(img, raw)) != string(jp2Data) {
		t.Fatal("WrapJP2 differs from EncodeJP2")
	}
	// Progressive decode works through the container too.
	half, err := DecodeWith(jp2Data, DecodeOptions{DiscardLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if half.W != 48 || half.H != 40 {
		t.Fatalf("reduced decode via JP2: %dx%d", half.W, half.H)
	}
}
