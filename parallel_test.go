// Determinism matrix for the whole-pipeline parallel encoder: the
// codestream must be byte-identical to the sequential encoder for
// every worker count, coding mode, and tiling — run `make race` to
// execute this matrix under the race detector.
package j2kcell

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"j2kcell/internal/simd"
)

// parallelCases is the determinism matrix: {lossless, lossy} ×
// {untiled, tiled}, with odd image dimensions so stripe and column
// boundaries exercise the edge paths.
var parallelCases = []struct {
	name string
	opt  Options
}{
	{"lossless", Options{Lossless: true}},
	{"lossy", Options{Rate: 0.2}},
	{"lossless-tiled", Options{Lossless: true, TileW: 48, TileH: 32}},
	{"lossy-tiled", Options{Rate: 0.2, TileW: 48, TileH: 32}},
	{"lossless-ht", Options{Lossless: true, HT: true}},
	{"lossy-ht", Options{Rate: 0.2, HT: true}},
	{"lossless-ht-tiled", Options{Lossless: true, HT: true, TileW: 48, TileH: 32}},
}

func workerCounts() []int {
	return []int{1, 2, 3, runtime.GOMAXPROCS(0)}
}

func TestEncodeParallelDeterminism(t *testing.T) {
	img := TestImage(97, 61, 7)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			seq, _, err := Encode(img, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				t.Run(fmt.Sprintf("workers-%d", w), func(t *testing.T) {
					par, _, err := EncodeParallel(img, tc.opt, w)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(par, seq) {
						t.Fatalf("parallel stream differs from sequential (%d vs %d bytes)",
							len(par), len(seq))
					}
				})
			}
		})
	}
}

// TestEncodeKernelSetsDeterminism extends the matrix along the ISA
// axis: every selectable simd kernel set (scalar, and sse2/avx2 where
// the CPU has them) must produce the byte-identical codestream at
// every worker count. This is the executable form of the kernels'
// bit-identity contract — forcing scalar here is equivalent to running
// with J2K_NOSIMD=1 or the noasm build tag.
func TestEncodeKernelSetsDeterminism(t *testing.T) {
	prev := simd.Kernel()
	defer simd.Use(prev)
	img := TestImage(97, 61, 7)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			if err := simd.Use("scalar"); err != nil {
				t.Fatal(err)
			}
			ref, _, err := Encode(img, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, kern := range simd.Available() {
				if err := simd.Use(kern); err != nil {
					t.Fatal(err)
				}
				for _, w := range workerCounts() {
					t.Run(fmt.Sprintf("%s-workers-%d", kern, w), func(t *testing.T) {
						got, _, err := EncodeParallel(img, tc.opt, w)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got, ref) {
							t.Fatalf("kernel set %q stream differs from scalar (%d vs %d bytes)",
								kern, len(got), len(ref))
						}
					})
				}
			}
		})
	}
}

func TestDecodeParallelDeterminism(t *testing.T) {
	img := TestImage(97, 61, 7)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			data, _, err := Encode(img, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				t.Run(fmt.Sprintf("workers-%d", w), func(t *testing.T) {
					got, err := DecodeParallel(data, w)
					if err != nil {
						t.Fatal(err)
					}
					if !ref.Equal(got) {
						t.Fatal("parallel decode differs from sequential")
					}
				})
			}
		})
	}
}

// TestDecodeKernelSetsDeterminism is the decode-side ISA × workers
// matrix: the reconstructed image must be pixel-identical to the
// scalar sequential decode for every selectable kernel set (the
// inverse lifting, dequantization, inverse MCT and clamp kernels all
// carry the same bit-identity contract as the forward ones), every
// worker count, coding mode, and tiling. Forcing scalar here is
// equivalent to running with J2K_NOSIMD=1 or the noasm build tag.
func TestDecodeKernelSetsDeterminism(t *testing.T) {
	prev := simd.Kernel()
	defer simd.Use(prev)
	img := TestImage(97, 61, 7)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			data, _, err := Encode(img, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := simd.Use("scalar"); err != nil {
				t.Fatal(err)
			}
			ref, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			for _, kern := range simd.Available() {
				if err := simd.Use(kern); err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{1, 2, 8} {
					t.Run(fmt.Sprintf("%s-workers-%d", kern, w), func(t *testing.T) {
						got, err := DecodeParallel(data, w)
						if err != nil {
							t.Fatal(err)
						}
						if !ref.Equal(got) {
							t.Fatalf("kernel set %q decode differs from scalar sequential", kern)
						}
					})
				}
			}
		})
	}
}

// TestEncodeSteadyStateAllocs pins the allocation profile of the
// pooled pipeline: after a warm-up encode has populated the plane,
// Tier-1, and stripe-scratch arenas, a steady-state encode allocates
// only per-block outputs (Block structs, pass records, codeword
// copies) and the assembled stream — not coefficient planes or coder
// scratch. The bounds have ~1.5x headroom over measured values; a
// failure means per-encode scratch is being reallocated again.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	img := TestImage(192, 160, 9)
	for _, tc := range []struct {
		name   string
		opt    Options
		maxPer float64 // allocations per encode
	}{
		{"lossless", Options{Lossless: true}, 2500},
		{"lossy", Options{Rate: 0.2}, 9000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			encode := func() {
				if _, _, err := EncodeParallel(img, tc.opt, 1); err != nil {
					t.Fatal(err)
				}
			}
			encode() // warm the pools
			got := testing.AllocsPerRun(10, encode)
			t.Logf("allocs/encode = %.0f (bound %.0f)", got, tc.maxPer)
			if got > tc.maxPer {
				t.Fatalf("steady-state encode allocates %.0f times, want <= %.0f", got, tc.maxPer)
			}
		})
	}
}

// TestDecodeSteadyStateAllocs pins pool reuse across the new decode
// stages: after a warm-up decode has populated the plane and
// stripe-scratch arenas, a steady-state decode allocates only per-run
// transients (the output image, packet/block accumulators, per-block
// codeword copies) — the coefficient planes and the inverse DWT
// scratch come from the arenas. The bounds have ~1.5x headroom over
// measured values; a failure means a decode stage stopped recycling.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	img := TestImage(192, 160, 9)
	for _, tc := range []struct {
		name   string
		opt    Options
		maxPer float64 // allocations per decode
	}{
		{"lossless", Options{Lossless: true}, 2200},
		{"lossy", Options{Rate: 0.2}, 4400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, _, err := Encode(img, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			decode := func() {
				if _, err := DecodeParallel(data, 1); err != nil {
					t.Fatal(err)
				}
			}
			decode() // warm the pools
			got := testing.AllocsPerRun(10, decode)
			t.Logf("allocs/decode = %.0f (bound %.0f)", got, tc.maxPer)
			if got > tc.maxPer {
				t.Fatalf("steady-state decode allocates %.0f times, want <= %.0f", got, tc.maxPer)
			}
		})
	}
}
