// Command j2kinfo dumps the structure of a JPEG2000 codestream
// produced by this library: header parameters and the per-packet
// layout, with the byte budgets of each progression prefix.
package main

import (
	"flag"
	"fmt"
	"os"

	"j2kcell/internal/cli"
	"j2kcell/internal/codec"
)

func main() {
	in := flag.String("in", "", "input .j2c codestream")
	packets := flag.Bool("packets", false, "list every packet")
	stats := flag.Bool("stats", false, "per-subband and per-layer byte breakdown, marker segment sizes")
	maxPixels := flag.Int64("max-pixels", 0, "reject headers declaring more than this many samples (0 = library default)")
	maxDim := flag.Int("max-dim", 0, "reject headers wider or taller than this (0 = library default)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "j2kinfo: need -in file.j2c")
		os.Exit(cli.ExitUsage)
	}
	data, err := os.ReadFile(*in)
	check(err)
	info, err := codec.InspectLimits(data, *cli.Limits(*maxPixels, *maxDim))
	check(err)

	h := info.Header
	mode := "lossy 9/7"
	if h.Lossless {
		mode = "lossless 5/3"
	}
	prog := "LRCP"
	if h.Progression == 1 {
		prog = "RLCP"
	}
	coder := "MQ"
	if h.HT {
		coder = "HT (high throughput)"
	}
	fmt.Printf("%s: %dx%d, %d component(s) @ %d bit, %s\n", *in, h.W, h.H, h.NComp, h.Depth, mode)
	fmt.Printf("  %d DWT levels, %dx%d code blocks, %d layer(s), %s progression, termall=%v\n",
		h.Levels, h.CBW, h.CBH, h.Layers, prog, h.TermAll)
	fmt.Printf("  block coder: %s\n", coder)
	fmt.Printf("  %d packets, %d body bytes, %d total\n\n",
		len(info.Packets), info.BytesAtResolution(h.Levels), len(data))

	fmt.Println("bytes by resolution prefix (thumbnail cost under RLCP):")
	for r := 0; r <= h.Levels; r++ {
		fmt.Printf("  res <= %d: %8d bytes\n", r, info.BytesAtResolution(r))
	}
	if h.Layers > 1 {
		fmt.Println("bytes by layer prefix (quality cost under LRCP):")
		for l := 1; l <= h.Layers; l++ {
			fmt.Printf("  layers < %d: %8d bytes\n", l+0, info.BytesAtLayer(l))
		}
	}
	if *stats {
		printStats(info, len(data))
	}
	if *packets {
		fmt.Println("\npackets (layer, resolution, component):")
		for _, p := range info.Packets {
			fmt.Printf("  L%d R%d C%d  @%-8d %6d bytes, %3d blocks\n",
				p.Layer, p.Res, p.Comp, p.Offset, p.Bytes, p.Blocks)
		}
	}
}

// printStats renders the -stats breakdown: where the bytes of the
// stream live — framing markers, Tier-2 packet headers, and MQ-coded
// block data split by subband and by quality layer.
func printStats(info *codec.StreamInfo, total int) {
	h := info.Header
	fmt.Println("marker segments:")
	markerTotal := 0
	for _, m := range info.Markers {
		fmt.Printf("  %-4s @%-8d %6d bytes\n", m.Name, m.Offset, m.Len)
		markerTotal += m.Len
	}
	fmt.Printf("  framing total %d bytes, packet headers %d bytes\n",
		markerTotal, info.HeaderOverhead())

	fmt.Println("block data by subband (component / band):")
	dataTotal := 0
	for _, b := range info.Bands {
		if b.Bytes == 0 && b.Blocks == 0 {
			continue
		}
		fmt.Printf("  C%d %2s L%d (%4dx%-4d) %8d bytes  %4d block contribution(s)\n",
			b.Comp, b.Band.Orient, b.Band.Level, b.Band.W, b.Band.H, b.Bytes, b.Blocks)
		dataTotal += b.Bytes
	}
	fmt.Printf("  block data total %d bytes (%.1f%% of stream)\n",
		dataTotal, 100*float64(dataTotal)/float64(total))

	fmt.Println("packet bytes by resolution:")
	prev := 0
	for r := 0; r <= h.Levels; r++ {
		at := info.BytesAtResolution(r)
		fmt.Printf("  res %d: %8d bytes\n", r, at-prev)
		prev = at
	}
	if h.Layers > 1 {
		fmt.Println("packet bytes by layer:")
		lprev := 0
		for l := 1; l <= h.Layers; l++ {
			at := info.BytesAtLayer(l)
			fmt.Printf("  layer %d: %8d bytes\n", l-1, at-lprev)
			lprev = at
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kinfo:", err)
		os.Exit(cli.ExitCode(err))
	}
}
