// Command j2kinfo dumps the structure of a JPEG2000 codestream
// produced by this library: header parameters and the per-packet
// layout, with the byte budgets of each progression prefix.
package main

import (
	"flag"
	"fmt"
	"os"

	"j2kcell/internal/codec"
)

func main() {
	in := flag.String("in", "", "input .j2c codestream")
	packets := flag.Bool("packets", false, "list every packet")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "j2kinfo: need -in file.j2c")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	check(err)
	info, err := codec.Inspect(data)
	check(err)

	h := info.Header
	mode := "lossy 9/7"
	if h.Lossless {
		mode = "lossless 5/3"
	}
	prog := "LRCP"
	if h.Progression == 1 {
		prog = "RLCP"
	}
	fmt.Printf("%s: %dx%d, %d component(s) @ %d bit, %s\n", *in, h.W, h.H, h.NComp, h.Depth, mode)
	fmt.Printf("  %d DWT levels, %dx%d code blocks, %d layer(s), %s progression, termall=%v\n",
		h.Levels, h.CBW, h.CBH, h.Layers, prog, h.TermAll)
	fmt.Printf("  %d packets, %d body bytes, %d total\n\n",
		len(info.Packets), info.BytesAtResolution(h.Levels), len(data))

	fmt.Println("bytes by resolution prefix (thumbnail cost under RLCP):")
	for r := 0; r <= h.Levels; r++ {
		fmt.Printf("  res <= %d: %8d bytes\n", r, info.BytesAtResolution(r))
	}
	if h.Layers > 1 {
		fmt.Println("bytes by layer prefix (quality cost under LRCP):")
		for l := 1; l <= h.Layers; l++ {
			fmt.Printf("  layers < %d: %8d bytes\n", l+0, info.BytesAtLayer(l))
		}
	}
	if *packets {
		fmt.Println("\npackets (layer, resolution, component):")
		for _, p := range info.Packets {
			fmt.Printf("  L%d R%d C%d  @%-8d %6d bytes, %3d blocks\n",
				p.Layer, p.Res, p.Comp, p.Offset, p.Bytes, p.Blocks)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kinfo:", err)
		os.Exit(1)
	}
}
