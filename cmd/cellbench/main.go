// Command cellbench regenerates the paper's evaluation tables and
// figures from the simulated Cell/B.E. Run with -scale 1 for the
// paper's full 3072x3072 workload (slow), or a larger divisor for a
// quick shape check; the modeled ratios are size-stable.
//
// -trace writes the traced 8-SPE profile run as Chrome trace JSON
// (one track per modeled PE); -pprof serves net/http/pprof while the
// experiments run, for profiling the simulator itself.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"j2kcell/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig4|fig5|fig6|fig7|fig8|fig9|ablate|loop|profile|calib|all")
	scale := flag.Int("scale", 4, "divide the paper's workload dimensions by this factor")
	traceOut := flag.String("trace", "", "write the traced 8-SPE profile run as Chrome trace JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address while experiments run")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cellbench: pprof server:", err)
			}
		}()
	}

	expSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})

	p := harness.DefaultParams(*scale)
	if *traceOut != "" {
		res, err := harness.TracedRun(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cellbench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*traceOut)
		if err == nil {
			err = harness.WriteSimTrace(f, res)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cellbench:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, len(res.Trace.Spans))
		if !expSet {
			return // -trace alone: skip the (slow) default experiment sweep
		}
	}
	run := func(tables ...*harness.Table) {
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	switch strings.ToLower(*exp) {
	case "table1":
		run(harness.Table1())
	case "fig4":
		run(harness.Fig4(p))
	case "fig5":
		run(harness.Fig5(p))
	case "fig6":
		run(harness.Fig6(p))
	case "fig7":
		run(harness.Fig7(p))
	case "fig8":
		run(harness.Fig8(p))
	case "fig9":
		run(harness.Fig9(p))
	case "ablate":
		run(harness.Ablations(p)...)
	case "loop":
		run(harness.AblateLoopParallel(p))
	case "profile":
		fmt.Println(harness.Profile(p))
	case "calib":
		run(harness.Calibration(p)...)
	case "all":
		run(harness.AllExperiments(p)...)
	default:
		fmt.Fprintf(os.Stderr, "cellbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
