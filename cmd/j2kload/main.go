// Command j2kload drives scenario mixes through the codec at
// configurable concurrency — the load harness for the per-operation
// observability layer (DESIGN.md §6). Each operation runs under its
// own context-scoped recorder (obs.WithOperation), so concurrent
// encodes and decodes keep disjoint span sets and distinct trace IDs
// while their totals roll up into the process-wide aggregate registry
// that /metrics serves.
//
// Scenarios:
//
//	thumbnail — lossy rate-constrained encode of a half-size image
//	            (MQ, untiled): the latency-sensitive preview path
//	archival  — lossless tiled encode: the bounded-memory bulk path
//	window    — random spatial access on a pre-encoded stream,
//	            alternating window decodes with discard-level
//	            (reduced-resolution) decodes
//	ht        — alternating HT and MQ lossless encodes, so the SLO
//	            table splits the two coders into separate classes
//	corrupt   — best-effort decodes of pre-corrupted resilient streams
//	            (bit flips and truncations in the tile bodies): the
//	            damage-containment path, exporting j2k_resync_total
//	            and j2k_concealed_blocks_total
//
// After the run it prints per-scenario throughput and the per-class
// SLO latency table (p50/p95/p99) from the aggregate registry.
// -metrics serves the shared observability mux during (and with
// -hold, after) the run; -selfcheck scrapes that endpoint over real
// HTTP, parses the Prometheus exposition, and fails the process if it
// is malformed or records zero operations — the CI smoke path.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"j2kcell"
	"j2kcell/internal/cli"
	"j2kcell/internal/obs"
)

// scenario is one operation mix entry: setup runs once (untimed,
// unobserved), run executes the i-th operation of this scenario.
type scenario struct {
	name  string
	setup func(size, opworkers int) error
	run   func(ctx context.Context, i int) error
}

func main() {
	n := flag.Int("n", 48, "total operations across all scenarios")
	conc := flag.Int("c", minInt(runtime.GOMAXPROCS(0), 4), "concurrent operations")
	size := flag.Int("size", 384, "base image edge in pixels")
	opworkers := flag.Int("opworkers", runtime.GOMAXPROCS(0), "pipeline workers inside each operation")
	shared := flag.Bool("shared", true, "run operations on the shared process-wide scheduler (false: per-call worker pools)")
	names := flag.String("scenarios", "thumbnail,archival,window,ht", "comma-separated scenario mix (thumbnail, archival, window, ht, corrupt)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :0)")
	hold := flag.Duration("hold", 0, "keep serving -metrics this long after the run")
	traceOut := flag.String("trace", "", "write a Chrome trace interleaving the first operations as separate processes")
	traceMax := flag.Int("trace-max", 32, "cap on operations captured for -trace")
	selfcheck := flag.Bool("selfcheck", false, "scrape own /metrics after the run and verify the exposition (implies -metrics :0 if unset)")
	opTimeout := flag.Duration("op-timeout", 30*time.Second, "per-operation timeout")
	flag.Parse()

	if *selfcheck && *metricsAddr == "" {
		*metricsAddr = "127.0.0.1:0"
	}
	var boundAddr string
	if *metricsAddr != "" {
		addr, err := cli.ServeObs(*metricsAddr)
		fail(err)
		boundAddr = addr
		fmt.Printf("metrics: http://%s/metrics\n", boundAddr)
	}

	all := scenarios()
	var mix []*scenario
	for _, nm := range strings.Split(*names, ",") {
		nm = strings.TrimSpace(nm)
		if nm == "" {
			continue
		}
		s, ok := all[nm]
		if !ok {
			fmt.Fprintf(os.Stderr, "j2kload: unknown scenario %q (have: thumbnail, archival, window, ht, corrupt)\n", nm)
			os.Exit(cli.ExitUsage)
		}
		mix = append(mix, s)
	}
	if len(mix) == 0 || *n <= 0 || *conc <= 0 {
		fmt.Fprintln(os.Stderr, "j2kload: need at least one scenario, -n > 0 and -c > 0")
		os.Exit(cli.ExitUsage)
	}
	for _, s := range mix {
		fail(s.setup(*size, *opworkers))
	}

	// The A/B switch for DESIGN.md §12: by default every operation's
	// stages multiplex onto the shared process-wide scheduler; -shared=false
	// restores per-call pools, where each operation spawns its own
	// `opworkers` goroutines (c×W total — the oversubscription the
	// goroutine high-water mark below makes visible).
	baseCtx := context.Background()
	if !*shared {
		baseCtx = j2kcell.WithPerCallPool(baseCtx)
	}

	// Goroutine high-water mark, sampled while the run is in flight:
	// the shared scheduler should hold this at O(GOMAXPROCS + c)
	// regardless of opworkers, where per-call pools grow with c×W.
	gBase := runtime.NumGoroutine()
	gHWM := int64(gBase)
	hwmStop := make(chan struct{})
	var hwmDone sync.WaitGroup
	hwmDone.Add(1)
	go func() {
		defer hwmDone.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-hwmStop:
				return
			case <-tick.C:
				if g := int64(runtime.NumGoroutine()); g > atomic.LoadInt64(&gHWM) {
					atomic.StoreInt64(&gHWM, g)
				}
			}
		}
	}()

	// Drive: operation i runs scenario i%len(mix) on one of -c worker
	// goroutines. Every operation gets its own context-scoped recorder
	// and trace ID; failures are counted per scenario, never aborting
	// the run (a load harness should survive individual errors).
	type tally struct{ ops, errs atomic.Int64 }
	tallies := make([]tally, len(mix))
	var traceMu sync.Mutex
	var traces []obs.OpTrace
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				// i/len(mix) is this scenario's own op sequence number, so
				// scenarios that alternate variants by parity (window, ht)
				// actually see both variants regardless of the mix width.
				si := i % len(mix)
				s := mix[si]
				ctx, cancel := context.WithTimeout(baseCtx, *opTimeout)
				opCtx, op := obs.WithOperation(ctx, "load:"+s.name)
				err := s.run(opCtx, i/len(mix))
				op.Finish()
				cancel()
				tallies[si].ops.Add(1)
				if err != nil {
					tallies[si].errs.Add(1)
					fmt.Fprintf(os.Stderr, "j2kload: %s op %d (%s): %v\n", s.name, i, op.TraceID(), err)
				}
				if *traceOut != "" {
					traceMu.Lock()
					if len(traces) < *traceMax {
						rec := op.Recorder()
						traces = append(traces, obs.OpTrace{
							TraceID:  op.TraceID(),
							Kind:     op.Kind(),
							Spans:    rec.TSpans(),
							Counters: rec.Counters(),
						})
					}
					traceMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(hwmStop)
	hwmDone.Wait()

	errTotal := int64(0)
	mode := "shared scheduler"
	if !*shared {
		mode = "per-call pools"
	}
	fmt.Printf("\n%d operations in %v (%.1f ops/s, concurrency %d, opworkers %d, %s)\n",
		*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds(), *conc, *opworkers, mode)
	for si, s := range mix {
		e := tallies[si].errs.Load()
		errTotal += e
		fmt.Printf("  %-10s %4d ops  %d errors\n", s.name, tallies[si].ops.Load(), e)
	}
	fmt.Printf("goroutines: high-water %d (baseline %d)\n", atomic.LoadInt64(&gHWM), gBase)
	if *shared {
		st := j2kcell.SchedulerStats()
		fmt.Printf("scheduler: %d-wide pool, %d lanes opened, %d pool claims, %d lane switches, %d admit waits, %d rejects\n",
			st.Workers, st.LanesOpened, st.PoolClaims, st.LaneSwitches, st.AdmitWaits, st.AdmitRejects)
	}
	fmt.Println()
	fmt.Print(obs.Aggregate().SLOTable())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		err = obs.WriteChromeTraceOps(f, traces)
		fail(f.Close())
		fail(err)
		fmt.Printf("trace: %s (%d operations as separate processes)\n", *traceOut, len(traces))
	}

	if *selfcheck {
		hasCorrupt := false
		for _, s := range mix {
			if s.name == "corrupt" {
				hasCorrupt = true
			}
		}
		fail(runSelfcheck(boundAddr, *shared && *opworkers > 1, hasCorrupt))
	}
	if *hold > 0 && boundAddr != "" {
		fmt.Printf("holding %v for scrapes of http://%s/metrics\n", *hold, boundAddr)
		time.Sleep(*hold)
	}
	if errTotal > 0 {
		os.Exit(cli.ExitError)
	}
}

// runSelfcheck scrapes the served /metrics over real HTTP, parses the
// text exposition with the library's minimal scraper, and verifies
// the run left a coherent trail: some operations completed
// (j2k_operations_total > 0) and the SLO histograms observed them.
// When the run used the shared scheduler (requireSched), the scheduler
// gauges must be exported and its lanes-opened counter nonzero. When
// the mix included the corrupt scenario (requireResilient), the
// resilience counters must show that damage was actually encountered
// and contained: j2k_resync_total and j2k_concealed_blocks_total > 0.
func runSelfcheck(addr string, requireSched, requireResilient bool) error {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return fmt.Errorf("selfcheck: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck: /metrics returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return fmt.Errorf("selfcheck: unexpected content type %q", ct)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return fmt.Errorf("selfcheck: malformed exposition: %w", err)
	}
	var opsTotal, sloCount, lanesOpened, resyncs, concealed float64
	schedGauges := 0
	for _, s := range samples {
		switch s.Name {
		case "j2k_operations_total":
			opsTotal += s.Value
		case "j2k_op_duration_seconds_count":
			sloCount += s.Value
		case "j2k_scheduler_lanes_opened_total":
			lanesOpened += s.Value
		case "j2k_resync_total":
			resyncs += s.Value
		case "j2k_concealed_blocks_total":
			concealed += s.Value
		case "j2k_scheduler_workers", "j2k_scheduler_lanes_open",
			"j2k_scheduler_active_ops", "j2k_scheduler_queue_depth":
			schedGauges++
		}
	}
	if opsTotal <= 0 {
		return fmt.Errorf("selfcheck: j2k_operations_total is %v, want > 0", opsTotal)
	}
	if sloCount <= 0 {
		return fmt.Errorf("selfcheck: j2k_op_duration_seconds observed no operations")
	}
	if requireSched {
		if schedGauges < 4 {
			return fmt.Errorf("selfcheck: scheduler gauges missing from exposition (%d/4 present)", schedGauges)
		}
		if lanesOpened <= 0 {
			return fmt.Errorf("selfcheck: j2k_scheduler_lanes_opened_total is %v after a shared-scheduler run, want > 0", lanesOpened)
		}
	}
	if requireResilient {
		if resyncs <= 0 {
			return fmt.Errorf("selfcheck: j2k_resync_total is %v after the corrupt scenario, want > 0", resyncs)
		}
		if concealed <= 0 {
			return fmt.Errorf("selfcheck: j2k_concealed_blocks_total is %v after the corrupt scenario, want > 0", concealed)
		}
	}
	fmt.Printf("selfcheck ok: %d samples, %v operations recorded\n", len(samples), opsTotal)
	return nil
}

// scenarios builds the scenario table. Inputs are synthesized once in
// setup (outside any operation recorder) so the timed operations
// measure codec work, not workload generation.
func scenarios() map[string]*scenario {
	type enc struct {
		img *j2kcell.Image
		opt j2kcell.Options
		wk  int
	}
	mk := func(s *enc) func(ctx context.Context, i int) error {
		return func(ctx context.Context, _ int) error {
			_, _, err := j2kcell.EncodeParallelContext(ctx, s.img, s.opt, s.wk)
			return err
		}
	}

	thumb := &enc{}
	thumbnail := &scenario{name: "thumbnail"}
	thumbnail.setup = func(size, wk int) error {
		thumb.img = j2kcell.TestImage(size/2, size/2, 42)
		thumb.opt = j2kcell.Options{Lossless: false, Rate: 0.1, Levels: 4}
		thumb.wk = wk
		return nil
	}
	thumbnail.run = mk(thumb)

	arch := &enc{}
	archival := &scenario{name: "archival"}
	archival.setup = func(size, wk int) error {
		arch.img = j2kcell.TestImage(size, size, 7)
		arch.opt = j2kcell.Options{Lossless: true, TileW: size / 2, TileH: size / 2}
		arch.wk = wk
		return nil
	}
	archival.run = mk(arch)

	var winData []byte
	var winSize, winWk int
	window := &scenario{name: "window"}
	window.setup = func(size, wk int) error {
		img := j2kcell.TestImage(size, size, 99)
		data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
		winData, winSize, winWk = data, size, wk
		return err
	}
	window.run = func(ctx context.Context, i int) error {
		dopt := j2kcell.DecodeOptions{Workers: winWk}
		if i%2 == 0 {
			win := winSize / 4
			off := (i * 13) % (winSize - win)
			dopt.Region = j2kcell.Rect{X0: off, Y0: off, W: win, H: win}
		} else {
			dopt.DiscardLevels = 2
		}
		_, err := j2kcell.DecodeWithContext(ctx, winData, dopt)
		return err
	}

	var htImg *j2kcell.Image
	var htWk int
	ht := &scenario{name: "ht"}
	ht.setup = func(size, wk int) error {
		htImg = j2kcell.TestImage(size/2, size/2, 3)
		htWk = wk
		return nil
	}
	ht.run = func(ctx context.Context, i int) error {
		opt := j2kcell.Options{Lossless: true, HT: i%2 == 0}
		_, _, err := j2kcell.EncodeParallelContext(ctx, htImg, opt, htWk)
		return err
	}

	// corrupt: setup encodes one resilient stream (SOP/EPH markers,
	// segmentation symbols, per-pass termination) and pre-damages
	// deterministic variants — bit flips inside the tile bodies and
	// truncations — so the timed operations exercise resync and
	// block concealment, never workload generation.
	var corData [][]byte
	var corWk int
	corrupt := &scenario{name: "corrupt"}
	corrupt.setup = func(size, wk int) error {
		img := j2kcell.TestImage(size/2, size/2, 17)
		data, _, err := j2kcell.Encode(img, j2kcell.Options{
			Lossless: true, Resilience: true, TileW: size / 4, TileH: size / 4,
		})
		if err != nil {
			return err
		}
		sod := bytes.Index(data, []byte{0xFF, 0x93})
		if sod < 0 || len(data)-sod < 16 {
			return fmt.Errorf("corrupt: no tile body in seed stream")
		}
		body := sod + 2
		rng := rand.New(rand.NewSource(5))
		for v := 0; v < 16; v++ {
			m := append([]byte(nil), data...)
			if v%4 == 3 {
				m = m[:body+rng.Intn(len(m)-body)]
			} else {
				for k := 0; k <= v%3; k++ {
					m[body+rng.Intn(len(m)-body)] ^= byte(1 << rng.Intn(8))
				}
			}
			corData = append(corData, m)
		}
		corWk = wk
		return nil
	}
	corrupt.run = func(ctx context.Context, i int) error {
		img, rep, err := j2kcell.DecodeResilientContext(ctx, corData[i%len(corData)], j2kcell.DecodeOptions{Workers: corWk})
		if err != nil {
			return err
		}
		if img == nil || rep == nil {
			return fmt.Errorf("corrupt: best-effort decode returned nil image or report")
		}
		if rep.SalvagedBytes > rep.TotalBytes || rep.LostPackets > rep.TotalPackets {
			return fmt.Errorf("corrupt: inconsistent damage report: %v", rep)
		}
		return nil
	}

	return map[string]*scenario{
		"thumbnail": thumbnail,
		"archival":  archival,
		"window":    window,
		"ht":        ht,
		"corrupt":   corrupt,
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kload:", err)
		os.Exit(cli.ExitCode(err))
	}
}
