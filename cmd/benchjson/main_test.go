package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: j2kcell/internal/t1
cpu: Test CPU
Benchmark_T1EncodeBlock/LL/dense/64x64         	     663	   1914119 ns/op	   8.56 MB/s	    9008 B/op	       8 allocs/op
PASS
ok  	j2kcell/internal/t1	23.154s
`

func writeSample(t *testing.T, text string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseRun(t *testing.T) {
	run, err := parseRun(writeSample(t, sample))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.CPU != "Test CPU" {
		t.Fatalf("env: %+v", run)
	}
	if len(run.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks", len(run.Benchmarks))
	}
	b := run.Benchmarks[0]
	if b.Pkg != "j2kcell/internal/t1" || b.Name != "Benchmark_T1EncodeBlock/LL/dense/64x64" {
		t.Fatalf("identity: %+v", b)
	}
	if b.Iterations != 663 || b.NsPerOp != 1914119 || b.MBPerSec != 8.56 ||
		b.BytesPerOp != 9008 || b.AllocsPerOp != 8 {
		t.Fatalf("metrics: %+v", b)
	}
}

func TestLoadSetsToleratesMissingBaseline(t *testing.T) {
	cur := writeSample(t, sample)
	sets, err := loadSets([]string{
		"baseline=" + filepath.Join(t.TempDir(), "no-such-baseline.txt"),
		"current=" + cur,
	})
	if err != nil {
		t.Fatalf("missing baseline should not be fatal: %v", err)
	}
	if _, ok := sets["baseline"]; ok {
		t.Fatal("missing baseline produced a set")
	}
	if run, ok := sets["current"]; !ok || len(run.Benchmarks) != 1 {
		t.Fatalf("current set not parsed: %+v", sets["current"])
	}
}

func TestLoadSetsStillFailsOnUnreadableFile(t *testing.T) {
	dir := t.TempDir() // a directory, not a file: Open succeeds, read fails
	if _, err := loadSets([]string{"current=" + dir}); err == nil {
		t.Fatal("unreadable input should be fatal")
	}
}

func TestSpeedupsPairAcrossGomaxprocsSuffix(t *testing.T) {
	base := &Run{Benchmarks: []Benchmark{
		{Pkg: "p", Name: "BenchmarkX-2", NsPerOp: 300},
		{Pkg: "p", Name: "BenchmarkOnlyBase-2", NsPerOp: 5},
	}}
	cur := &Run{Benchmarks: []Benchmark{
		{Pkg: "p", Name: "BenchmarkX-8", NsPerOp: 100},
		{Pkg: "p", Name: "BenchmarkOnlyCur-8", NsPerOp: 7},
	}}
	sp := speedups(base, cur)
	if len(sp) != 1 {
		t.Fatalf("got %d speedups, want 1", len(sp))
	}
	if sp[0].Ratio != 3 {
		t.Fatalf("ratio %v, want 3", sp[0].Ratio)
	}
}
