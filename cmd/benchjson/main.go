// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, optionally comparing labeled runs.
//
// Each argument is label=path (path "-" reads stdin); every file is one
// benchmark run. When both a "baseline" and a "current" set are given,
// the report includes per-benchmark speedup ratios for benchmarks
// present in both, which is how BENCH_*.json files record a PR's
// before/after numbers in one committed artifact.
//
//	go test -bench . -benchmem ./internal/t1/ > current.txt
//	benchjson -o BENCH_pr2.json baseline=bench/baseline_pr1.txt current=current.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string  `json:"pkg,omitempty"`
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerSec   float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

// Run is one benchmark invocation: its environment plus results.
type Run struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Speedup compares one benchmark across the baseline and current runs.
type Speedup struct {
	Pkg        string  `json:"pkg,omitempty"`
	Name       string  `json:"name"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	CurrentNs  float64 `json:"current_ns_per_op"`
	Ratio      float64 `json:"speedup"` // baseline / current; >1 is faster
}

// Report is the full JSON document.
type Report struct {
	Sets     map[string]*Run `json:"sets"`
	Speedups []Speedup       `json:"speedups,omitempty"`
}

// benchLine matches a result row: name, iteration count, ns/op, and
// whatever -benchmem / throughput columns follow.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func parseRun(path string) (*Run, error) {
	var f *os.File
	if path == "-" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	run := &Run{}
	pkg := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Pkg: pkg, Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, field := range strings.Split(m[4], "\t") {
			field = strings.TrimSpace(field)
			switch {
			case strings.HasSuffix(field, " MB/s"):
				b.MBPerSec, _ = strconv.ParseFloat(strings.TrimSuffix(field, " MB/s"), 64)
			case strings.HasSuffix(field, " B/op"):
				b.BytesPerOp, _ = strconv.ParseInt(strings.TrimSuffix(field, " B/op"), 10, 64)
			case strings.HasSuffix(field, " allocs/op"):
				b.AllocsPerOp, _ = strconv.ParseInt(strings.TrimSuffix(field, " allocs/op"), 10, 64)
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return run, nil
}

// key identifies a benchmark across runs. The -N GOMAXPROCS suffix is
// stripped so runs from differently-sized machines still pair up.
func key(b Benchmark) string {
	name := b.Name
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return b.Pkg + " " + name
}

func speedups(base, cur *Run) []Speedup {
	byKey := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byKey[key(b)] = b
	}
	var out []Speedup
	for _, c := range cur.Benchmarks {
		b, ok := byKey[key(c)]
		if !ok || c.NsPerOp == 0 {
			continue
		}
		out = append(out, Speedup{
			Pkg: c.Pkg, Name: c.Name,
			BaselineNs: b.NsPerOp, CurrentNs: c.NsPerOp,
			Ratio: b.NsPerOp / c.NsPerOp,
		})
	}
	return out
}

// loadSets parses every label=path argument. A path that does not
// exist is tolerated with a warning — fresh checkouts have no recorded
// baseline yet, so the report simply omits that set (and with it the
// speedup comparison); any other parse failure is fatal.
func loadSets(args []string) (map[string]*Run, error) {
	sets := map[string]*Run{}
	for _, arg := range args {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			label, path = "current", arg
		}
		run, err := parseRun(path)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s: %v (set %q omitted)\n", path, err, label)
				continue
			}
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		sets[label] = run
	}
	return sets, nil
}

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] label=benchfile ...")
		os.Exit(2)
	}
	sets, err := loadSets(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep := Report{Sets: sets}
	if base, cur := rep.Sets["baseline"], rep.Sets["current"]; base != nil && cur != nil {
		rep.Speedups = speedups(base, cur)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
