// Command j2kenc transcodes a BMP image to a JPEG2000 codestream —
// the workflow of the paper's evaluation (JasPer transcoding
// waltham_dial.bmp). BMP, PGM and PPM inputs are detected by
// extension; with -dial it generates the synthetic dial workload
// instead of reading a file.
//
// Observability (see DESIGN.md §6): -report prints the per-stage
// wall/busy breakdown with the measured Amdahl serial fraction,
// -trace writes a chrome://tracing timeline with one track per
// worker, -metrics dumps the counter set (queue claims, MQ renorm
// chunks, DWT bytes moved, pool hit rates), and -pprof serves
// net/http/pprof plus /debug/vars and /metrics while encoding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"j2kcell"
	"j2kcell/internal/bmp"
	"j2kcell/internal/cli"
	"j2kcell/internal/obs"
	"j2kcell/internal/pnm"
	"j2kcell/internal/simd"
)

func main() {
	in := flag.String("in", "", "input BMP file (omit with -dial)")
	out := flag.String("out", "out.j2c", "output JPEG2000 codestream")
	dial := flag.Int("dial", 0, "generate an NxN synthetic dial instead of reading -in")
	lossless := flag.Bool("lossless", true, "reversible 5/3 path (JasPer default)")
	rate := flag.Float64("rate", 0, "lossy rate target as a fraction of raw size (e.g. 0.1); implies -lossless=false")
	levels := flag.Int("levels", 5, "DWT decomposition levels")
	cb := flag.Int("cb", 64, "code block size (16, 32 or 64)")
	ht := flag.Bool("ht", false, "use the high-throughput (Part 15) block coder instead of the MQ coder")
	resilience := flag.Bool("resilience", false, "emit the Part-1 error-resilience tools (SOP markers, per-pass termination, segmentation symbols) so damaged streams stay salvageable")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "Tier-1 worker goroutines (1 = sequential)")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON timeline to this file")
	report := flag.Bool("report", false, "print the per-stage wall-time / serial-fraction table")
	metrics := flag.Bool("metrics", false, "print the counter and histogram table after encoding")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	timeout := flag.Duration("timeout", 0, "abort the encode after this long (0 = no limit; exit code 5 on expiry)")
	flag.Parse()

	var img *j2kcell.Image
	switch {
	case *dial > 0:
		img = j2kcell.TestImage(*dial, *dial, 42)
	case *in != "":
		f, err := os.Open(*in)
		check(err)
		switch strings.ToLower(filepath.Ext(*in)) {
		case ".pgm", ".ppm", ".pnm":
			img, err = pnm.Decode(f)
		default:
			img, err = bmp.Decode(f)
		}
		f.Close()
		check(err)
	default:
		fmt.Fprintln(os.Stderr, "j2kenc: need -in file.bmp or -dial N")
		os.Exit(2)
	}

	opt := j2kcell.Options{Lossless: *lossless, Levels: *levels, CBW: *cb, CBH: *cb, HT: *ht, Resilience: *resilience}
	if *rate > 0 {
		opt.Lossless = false
		opt.Rate = *rate
	}

	observe := *traceOut != "" || *report || *metrics || *pprofAddr != ""
	if *pprofAddr != "" {
		addr, err := cli.ServeObs(*pprofAddr)
		check(err)
		fmt.Fprintf(os.Stderr, "j2kenc: serving /metrics, /debug/vars, /debug/pprof on %s\n", addr)
	}

	ctx, cancel := cli.Context(*timeout)
	defer cancel()
	// The encode runs as one observed operation: the context carries a
	// per-operation recorder whose totals roll into the aggregate
	// registry (the /metrics source) when the operation finishes.
	var op *obs.Op
	var rec *obs.Recorder
	if observe {
		ctx, op = obs.WithOperation(ctx, "encode")
		rec = op.Recorder()
	}
	start := time.Now()
	data, stats, err := j2kcell.EncodeParallelContext(ctx, img, opt, *workers)
	check(err)
	if strings.ToLower(filepath.Ext(*out)) == ".jp2" {
		data = j2kcell.WrapJP2(img, data)
	}
	elapsed := time.Since(start)

	check(os.WriteFile(*out, data, 0o644))
	raw := img.W * img.H * len(img.Comps)
	fmt.Printf("%dx%dx%d -> %s: %d bytes (%.2f:1) in %v (%d blocks, %d coding passes)\n",
		img.W, img.H, len(img.Comps), *out, len(data),
		float64(raw)/float64(len(data)), elapsed.Round(time.Millisecond),
		stats.Blocks, stats.TotalPasses)

	if rec != nil {
		op.Finish()
		spans := rec.TSpans()
		if *report {
			fmt.Printf("trace %s: simd kernels: %s (available: %s)\n",
				op.TraceID(), simd.Kernel(), strings.Join(simd.Available(), ", "))
			fmt.Print(obs.BuildReport(spans, *workers).Table())
			fmt.Print(rec.SLOTable())
		}
		if *metrics {
			fmt.Print(rec.MetricsTable())
		}
		if *traceOut != "" {
			check(obs.WriteChromeTraceFile(*traceOut, spans, rec.Counters()))
			fmt.Printf("trace: %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
				*traceOut, len(spans))
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kenc:", err)
		os.Exit(cli.ExitCode(err))
	}
}
