// Command j2kverify runs the library's end-to-end conformance matrix
// on synthetic workloads and prints a pass/fail report: lossless
// bit-exactness, rate-budget compliance, progression correctness,
// encoder byte-identity across the sequential, goroutine-parallel and
// Cell-simulated paths. Intended as a post-install smoke test.
package main

import (
	"fmt"
	"os"
	"time"

	"j2kcell"
)

type check struct {
	name string
	fn   func() error
}

func main() {
	img := j2kcell.TestImage(256, 192, 99)
	raw := img.W * img.H * len(img.Comps)

	checks := []check{
		{"lossless round trip is bit exact", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			back, err := j2kcell.Decode(data)
			if err != nil {
				return err
			}
			if !img.Equal(back) {
				return fmt.Errorf("reconstruction differs")
			}
			return nil
		}},
		{"lossy rate 0.1 respects the byte budget", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Rate: 0.1})
			if err != nil {
				return err
			}
			if len(data) > raw/10 {
				return fmt.Errorf("%d bytes > budget %d", len(data), raw/10)
			}
			back, err := j2kcell.Decode(data)
			if err != nil {
				return err
			}
			if p := img.PSNR(back); p < 25 {
				return fmt.Errorf("PSNR %.1f dB too low", p)
			}
			return nil
		}},
		{"three encoders emit identical bytes", func() error {
			opt := j2kcell.Options{Rate: 0.15}
			a, _, err := j2kcell.Encode(img, opt)
			if err != nil {
				return err
			}
			b, _, err := j2kcell.EncodeParallel(img, opt, 0)
			if err != nil {
				return err
			}
			c, err := j2kcell.Simulate(img, j2kcell.DefaultSimConfig(8, opt))
			if err != nil {
				return err
			}
			if string(a) != string(b) || string(a) != string(c.Data) {
				return fmt.Errorf("encoder outputs diverge")
			}
			return nil
		}},
		{"quality layers are progressive", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{LayerRates: []float64{0.03, 0.1, 0.3}})
			if err != nil {
				return err
			}
			last := 0.0
			for l := 1; l <= 3; l++ {
				got, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{MaxLayers: l})
				if err != nil {
					return err
				}
				p := img.PSNR(got)
				if p < last-0.01 {
					return fmt.Errorf("PSNR fell at layer %d", l)
				}
				last = p
			}
			return nil
		}},
		{"resolution-progressive decode sizes", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			got, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{DiscardLevels: 2})
			if err != nil {
				return err
			}
			if got.W != 64 || got.H != 48 {
				return fmt.Errorf("got %dx%d, want 64x48", got.W, got.H)
			}
			return nil
		}},
		{"window decode matches full-decode crop", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			win, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{
				Region: j2kcell.Rect{X0: 60, Y0: 50, W: 70, H: 40}})
			if err != nil {
				return err
			}
			if !win.Equal(img.SubImage(60, 50, 70, 40)) {
				return fmt.Errorf("window differs from crop")
			}
			return nil
		}},
		{"tiled encode round trips", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true, TileW: 96, TileH: 96})
			if err != nil {
				return err
			}
			back, err := j2kcell.Decode(data)
			if err != nil {
				return err
			}
			if !img.Equal(back) {
				return fmt.Errorf("tiled reconstruction differs")
			}
			return nil
		}},
		{"truncated streams error cleanly", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			for _, n := range []int{0, 2, len(data) / 3, len(data) - 3} {
				if _, err := j2kcell.Decode(data[:n]); err == nil {
					return fmt.Errorf("truncation at %d accepted", n)
				}
			}
			return nil
		}},
	}

	failed := 0
	for _, c := range checks {
		start := time.Now()
		err := c.fn()
		status := "ok  "
		if err != nil {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s  %-45s %8v", status, c.name, time.Since(start).Round(time.Millisecond))
		if err != nil {
			fmt.Printf("  (%v)", err)
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Printf("%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(checks))
}
