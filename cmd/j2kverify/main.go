// Command j2kverify runs the library's end-to-end conformance matrix
// on synthetic workloads and prints a pass/fail report: lossless
// bit-exactness, rate-budget compliance, progression correctness,
// encoder byte-identity across the sequential, goroutine-parallel and
// Cell-simulated paths, plus the robustness contract (header limits,
// cancellation, fault containment). Intended as a post-install smoke
// test.
//
// -timeout bounds each individual check; a hung check fails the run
// with exit code 5. Exit codes: 0 all pass, 1 check failure, 5 a
// check timed out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"j2kcell"
	"j2kcell/internal/cli"
	"j2kcell/internal/codestream"
	"j2kcell/internal/faults"
)

type check struct {
	name string
	fn   func() error
}

// bombStream builds a well-formed codestream whose SIZ declares a
// 2^20 × 2^20 image — the decompression-bomb probe.
func bombStream() []byte {
	mb := make([]int, 16)
	for i := range mb {
		mb[i] = 8
	}
	return codestream.Encode(&codestream.Header{
		W: 1 << 20, H: 1 << 20, NComp: 1, Depth: 8,
		Levels: 5, CBW: 64, CBH: 64, Layers: 1,
		Lossless: true, Mb: [][]int{mb},
	}, nil)
}

func main() {
	timeout := flag.Duration("timeout", 2*time.Minute, "per-check watchdog (0 = no limit; exit code 5 on expiry)")
	maxPixels := flag.Int64("max-pixels", 0, "decoder pixel budget used by the checks (0 = library default)")
	flag.Parse()

	img := j2kcell.TestImage(256, 192, 99)
	raw := img.W * img.H * len(img.Comps)
	limits := cli.Limits(*maxPixels, 0)

	checks := []check{
		{"lossless round trip is bit exact", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			back, err := j2kcell.Decode(data)
			if err != nil {
				return err
			}
			if !img.Equal(back) {
				return fmt.Errorf("reconstruction differs")
			}
			return nil
		}},
		{"lossy rate 0.1 respects the byte budget", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Rate: 0.1})
			if err != nil {
				return err
			}
			if len(data) > raw/10 {
				return fmt.Errorf("%d bytes > budget %d", len(data), raw/10)
			}
			back, err := j2kcell.Decode(data)
			if err != nil {
				return err
			}
			if p := img.PSNR(back); p < 25 {
				return fmt.Errorf("PSNR %.1f dB too low", p)
			}
			return nil
		}},
		{"three encoders emit identical bytes", func() error {
			opt := j2kcell.Options{Rate: 0.15}
			a, _, err := j2kcell.Encode(img, opt)
			if err != nil {
				return err
			}
			b, _, err := j2kcell.EncodeParallel(img, opt, 0)
			if err != nil {
				return err
			}
			c, err := j2kcell.Simulate(img, j2kcell.DefaultSimConfig(8, opt))
			if err != nil {
				return err
			}
			if string(a) != string(b) || string(a) != string(c.Data) {
				return fmt.Errorf("encoder outputs diverge")
			}
			return nil
		}},
		{"quality layers are progressive", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{LayerRates: []float64{0.03, 0.1, 0.3}})
			if err != nil {
				return err
			}
			last := 0.0
			for l := 1; l <= 3; l++ {
				got, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{MaxLayers: l})
				if err != nil {
					return err
				}
				p := img.PSNR(got)
				if p < last-0.01 {
					return fmt.Errorf("PSNR fell at layer %d", l)
				}
				last = p
			}
			return nil
		}},
		{"resolution-progressive decode sizes", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			got, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{DiscardLevels: 2})
			if err != nil {
				return err
			}
			if got.W != 64 || got.H != 48 {
				return fmt.Errorf("got %dx%d, want 64x48", got.W, got.H)
			}
			return nil
		}},
		{"window decode matches full-decode crop", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			win, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{
				Region: j2kcell.Rect{X0: 60, Y0: 50, W: 70, H: 40}})
			if err != nil {
				return err
			}
			if !win.Equal(img.SubImage(60, 50, 70, 40)) {
				return fmt.Errorf("window differs from crop")
			}
			return nil
		}},
		{"tiled encode round trips", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true, TileW: 96, TileH: 96})
			if err != nil {
				return err
			}
			back, err := j2kcell.Decode(data)
			if err != nil {
				return err
			}
			if !img.Equal(back) {
				return fmt.Errorf("tiled reconstruction differs")
			}
			return nil
		}},
		{"truncated streams error cleanly", func() error {
			data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
			if err != nil {
				return err
			}
			for _, n := range []int{0, 2, len(data) / 3, len(data) - 3} {
				if _, err := j2kcell.Decode(data[:n]); err == nil {
					return fmt.Errorf("truncation at %d accepted", n)
				}
			}
			return nil
		}},
		{"gigapixel header rejected as FormatError", func() error {
			_, err := j2kcell.DecodeWithContext(context.Background(), bombStream(),
				j2kcell.DecodeOptions{Limits: limits})
			var fe *j2kcell.FormatError
			if !errors.As(err, &fe) {
				return fmt.Errorf("got %v, want *FormatError", err)
			}
			return nil
		}},
		{"cancelled encode returns context.Canceled", func() error {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, _, err := j2kcell.EncodeParallelContext(ctx, img, j2kcell.Options{Lossless: true}, 4)
			if !errors.Is(err, context.Canceled) {
				return fmt.Errorf("got %v, want context.Canceled", err)
			}
			return nil
		}},
		{"injected stage panic contained as FaultError", func() error {
			faults.Arm("t1", 1, faults.Panic)
			defer faults.Disarm()
			_, _, err := j2kcell.EncodeParallel(img, j2kcell.Options{Lossless: true}, 4)
			var fe *j2kcell.FaultError
			if !errors.As(err, &fe) {
				return fmt.Errorf("got %v, want *FaultError", err)
			}
			if fe.Stage != "t1" {
				return fmt.Errorf("fault stage %q, want t1", fe.Stage)
			}
			return nil
		}},
	}

	failed, timedOut := 0, 0
	for _, c := range checks {
		start := time.Now()
		err := runChecked(c.fn, *timeout)
		status := "ok  "
		if err != nil {
			status = "FAIL"
			failed++
			if errors.Is(err, context.DeadlineExceeded) {
				timedOut++
			}
		}
		fmt.Printf("%s  %-45s %8v", status, c.name, time.Since(start).Round(time.Millisecond))
		if err != nil {
			fmt.Printf("  (%v)", err)
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Printf("%d of %d checks failed\n", failed, len(checks))
		if timedOut > 0 {
			os.Exit(cli.ExitTimeout)
		}
		os.Exit(cli.ExitError)
	}
	fmt.Printf("all %d checks passed\n", len(checks))
}

// runChecked runs fn under the watchdog. A check that outlives the
// timeout is reported as DeadlineExceeded; its goroutine is abandoned
// (the process exits shortly after anyway).
func runChecked(fn func() error, timeout time.Duration) error {
	if timeout <= 0 {
		return fn()
	}
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("check watchdog: %w", context.DeadlineExceeded)
	}
}
