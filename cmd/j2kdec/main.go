// Command j2kdec decodes a JPEG2000 codestream produced by this
// library back to a raster image (BMP, or PGM/PPM by extension),
// verifying the full Tier-2 → Tier-1 → inverse DWT → inverse MCT path.
//
// Untrusted inputs are bounded two ways: -max-pixels / -max-dim cap
// what the stream's header may declare (rejected before allocation),
// and -timeout bounds wall time. Exit codes distinguish the failure:
// 1 I/O, 2 usage, 3 malformed/over-limit stream, 4 contained codec
// fault, 5 timeout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"j2kcell"
	"j2kcell/internal/bmp"
	"j2kcell/internal/cli"
	"j2kcell/internal/pnm"
)

func main() {
	in := flag.String("in", "", "input .j2c codestream")
	out := flag.String("out", "out.bmp", "output image (.bmp, .pgm or .ppm)")
	workers := flag.Int("workers", 0, "Tier-1 decode workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the decode after this long (0 = no limit)")
	maxPixels := flag.Int64("max-pixels", 0, "reject headers declaring more than this many samples (0 = library default)")
	maxDim := flag.Int("max-dim", 0, "reject headers wider or taller than this (0 = library default)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "j2kdec: need -in file.j2c")
		os.Exit(cli.ExitUsage)
	}
	data, err := os.ReadFile(*in)
	check(err)

	ctx, cancel := cli.Context(*timeout)
	defer cancel()
	img, err := j2kcell.DecodeWithContext(ctx, data, j2kcell.DecodeOptions{
		Workers: *workers,
		Limits:  cli.Limits(*maxPixels, *maxDim),
	})
	check(err)

	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	switch strings.ToLower(filepath.Ext(*out)) {
	case ".pgm", ".ppm", ".pnm":
		check(pnm.Encode(f, img))
		fmt.Printf("%s: %dx%d decoded to %s\n", *in, img.W, img.H, *out)
		return
	}
	if len(img.Comps) == 1 {
		// Expand grayscale to RGB for the BMP writer.
		g := img
		img = j2kcell.NewImage(g.W, g.H, 3, g.Depth)
		for c := 0; c < 3; c++ {
			copy(img.Comps[c].Data, g.Comps[0].Data)
		}
	}
	check(bmp.Encode(f, img))
	fmt.Printf("%s: %dx%d decoded to %s\n", *in, img.W, img.H, *out)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kdec:", err)
		os.Exit(cli.ExitCode(err))
	}
}
