// Command j2kdec decodes a JPEG2000 codestream produced by this
// library back to a raster image (BMP, or PGM/PPM by extension),
// verifying the full Tier-2 → Tier-1 → inverse DWT → inverse MCT path.
//
// Untrusted inputs are bounded two ways: -max-pixels / -max-dim cap
// what the stream's header may declare (rejected before allocation),
// and -timeout bounds wall time. Exit codes distinguish the failure:
// 1 I/O, 2 usage, 3 malformed/over-limit stream, 4 contained codec
// fault, 5 timeout.
//
// Observability matches j2kenc (see DESIGN.md §6), now covering the
// decode pipeline's stages (zero, t1, deq, idwt-h, idwt-v, imct):
// -report prints the per-stage wall/busy breakdown with the measured
// Amdahl serial fraction, -trace writes a chrome://tracing timeline
// with one track per worker, -metrics dumps the counter set (queue
// claims, Tier-1 decode partitions/singletons, DWT bytes moved, pool
// hit rates), and -pprof serves net/http/pprof plus /debug/vars and
// /metrics while decoding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"j2kcell"
	"j2kcell/internal/bmp"
	"j2kcell/internal/cli"
	"j2kcell/internal/obs"
	"j2kcell/internal/pnm"
	"j2kcell/internal/simd"
)

func main() {
	in := flag.String("in", "", "input .j2c codestream")
	out := flag.String("out", "out.bmp", "output image (.bmp, .pgm or .ppm)")
	workers := flag.Int("workers", 0, "decode pipeline workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the decode after this long (0 = no limit)")
	maxPixels := flag.Int64("max-pixels", 0, "reject headers declaring more than this many samples (0 = library default)")
	maxDim := flag.Int("max-dim", 0, "reject headers wider or taller than this (0 = library default)")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON timeline to this file")
	report := flag.Bool("report", false, "print the per-stage wall-time / serial-fraction table")
	metrics := flag.Bool("metrics", false, "print the counter and histogram table after decoding")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "j2kdec: need -in file.j2c")
		os.Exit(cli.ExitUsage)
	}
	data, err := os.ReadFile(*in)
	check(err)

	observe := *traceOut != "" || *report || *metrics || *pprofAddr != ""
	if *pprofAddr != "" {
		addr, err := cli.ServeObs(*pprofAddr)
		check(err)
		fmt.Fprintf(os.Stderr, "j2kdec: serving /metrics, /debug/vars, /debug/pprof on %s\n", addr)
	}

	ctx, cancel := cli.Context(*timeout)
	defer cancel()
	// As in j2kenc: the decode is one observed operation with its own
	// trace ID, rolled into the aggregate registry on finish.
	var op *obs.Op
	var rec *obs.Recorder
	if observe {
		ctx, op = obs.WithOperation(ctx, "decode")
		rec = op.Recorder()
	}
	start := time.Now()
	img, err := j2kcell.DecodeWithContext(ctx, data, j2kcell.DecodeOptions{
		Workers: *workers,
		Limits:  cli.Limits(*maxPixels, *maxDim),
	})
	check(err)
	elapsed := time.Since(start)

	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	switch strings.ToLower(filepath.Ext(*out)) {
	case ".pgm", ".ppm", ".pnm":
		check(pnm.Encode(f, img))
	default:
		bimg := img
		if len(img.Comps) == 1 {
			// Expand grayscale to RGB for the BMP writer.
			bimg = j2kcell.NewImage(img.W, img.H, 3, img.Depth)
			for c := 0; c < 3; c++ {
				copy(bimg.Comps[c].Data, img.Comps[0].Data)
			}
		}
		check(bmp.Encode(f, bimg))
	}
	fmt.Printf("%s: %dx%d decoded to %s in %v\n", *in, img.W, img.H, *out, elapsed.Round(time.Millisecond))

	if rec != nil {
		op.Finish()
		spans := rec.TSpans()
		if *report {
			fmt.Printf("trace %s: simd kernels: %s (available: %s)\n",
				op.TraceID(), simd.Kernel(), strings.Join(simd.Available(), ", "))
			fmt.Print(obs.BuildReport(spans, *workers).Table())
			fmt.Print(rec.SLOTable())
		}
		if *metrics {
			fmt.Print(rec.MetricsTable())
		}
		if *traceOut != "" {
			check(obs.WriteChromeTraceFile(*traceOut, spans, rec.Counters()))
			fmt.Printf("trace: %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
				*traceOut, len(spans))
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kdec:", err)
		os.Exit(cli.ExitCode(err))
	}
}
