// Command j2kdec decodes a JPEG2000 codestream produced by this
// library back to a raster image (BMP, or PGM/PPM by extension),
// verifying the full Tier-2 → Tier-1 → inverse DWT → inverse MCT path.
//
// Untrusted inputs are bounded two ways: -max-pixels / -max-dim cap
// what the stream's header may declare (rejected before allocation),
// and -timeout bounds wall time. Exit codes distinguish the failure:
// 1 I/O, 2 usage, 3 malformed/over-limit stream, 4 contained codec
// fault, 5 timeout, 6 partial (best-effort decode of a damaged
// stream).
//
// -best-effort decodes damaged streams as far as possible instead of
// failing: lost packets and code blocks are concealed as zero
// coefficients and the exit code reports partial success (6) so
// scripts can tell a salvaged image from an intact one.
// -damage-report additionally prints the structured loss map (per
// tile: lost packets, concealed blocks with affected pixel regions,
// resyncs, salvaged byte ratio).
//
// Observability matches j2kenc (see DESIGN.md §6), now covering the
// decode pipeline's stages (zero, t1, deq, idwt-h, idwt-v, imct):
// -report prints the per-stage wall/busy breakdown with the measured
// Amdahl serial fraction, -trace writes a chrome://tracing timeline
// with one track per worker, -metrics dumps the counter set (queue
// claims, Tier-1 decode partitions/singletons, DWT bytes moved, pool
// hit rates), and -pprof serves net/http/pprof plus /debug/vars and
// /metrics while decoding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"j2kcell"
	"j2kcell/internal/bmp"
	"j2kcell/internal/cli"
	"j2kcell/internal/obs"
	"j2kcell/internal/pnm"
	"j2kcell/internal/simd"
)

func main() {
	in := flag.String("in", "", "input .j2c codestream")
	out := flag.String("out", "out.bmp", "output image (.bmp, .pgm or .ppm)")
	workers := flag.Int("workers", 0, "decode pipeline workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the decode after this long (0 = no limit)")
	maxPixels := flag.Int64("max-pixels", 0, "reject headers declaring more than this many samples (0 = library default)")
	maxDim := flag.Int("max-dim", 0, "reject headers wider or taller than this (0 = library default)")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON timeline to this file")
	report := flag.Bool("report", false, "print the per-stage wall-time / serial-fraction table")
	metrics := flag.Bool("metrics", false, "print the counter and histogram table after decoding")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	bestEffort := flag.Bool("best-effort", false, "decode a damaged stream as far as possible; exit 6 if anything was lost")
	damageReport := flag.Bool("damage-report", false, "print the per-tile damage report (implies -best-effort)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "j2kdec: need -in file.j2c")
		os.Exit(cli.ExitUsage)
	}
	data, err := os.ReadFile(*in)
	check(err)

	observe := *traceOut != "" || *report || *metrics || *pprofAddr != ""
	if *pprofAddr != "" {
		addr, err := cli.ServeObs(*pprofAddr)
		check(err)
		fmt.Fprintf(os.Stderr, "j2kdec: serving /metrics, /debug/vars, /debug/pprof on %s\n", addr)
	}

	ctx, cancel := cli.Context(*timeout)
	defer cancel()
	// As in j2kenc: the decode is one observed operation with its own
	// trace ID, rolled into the aggregate registry on finish.
	var op *obs.Op
	var rec *obs.Recorder
	if observe {
		ctx, op = obs.WithOperation(ctx, "decode")
		rec = op.Recorder()
	}
	dopt := j2kcell.DecodeOptions{
		Workers: *workers,
		Limits:  cli.Limits(*maxPixels, *maxDim),
	}
	start := time.Now()
	var img *j2kcell.Image
	var rep *j2kcell.DamageReport
	if *bestEffort || *damageReport {
		img, rep, err = j2kcell.DecodeResilientContext(ctx, data, dopt)
	} else {
		img, err = j2kcell.DecodeWithContext(ctx, data, dopt)
	}
	check(err)
	elapsed := time.Since(start)

	f, err := os.Create(*out)
	check(err)
	switch strings.ToLower(filepath.Ext(*out)) {
	case ".pgm", ".ppm", ".pnm":
		check(pnm.Encode(f, img))
	default:
		bimg := img
		if len(img.Comps) == 1 {
			// Expand grayscale to RGB for the BMP writer.
			bimg = j2kcell.NewImage(img.W, img.H, 3, img.Depth)
			for c := 0; c < 3; c++ {
				copy(bimg.Comps[c].Data, img.Comps[0].Data)
			}
		}
		check(bmp.Encode(f, bimg))
	}
	check(f.Close())
	fmt.Printf("%s: %dx%d decoded to %s in %v\n", *in, img.W, img.H, *out, elapsed.Round(time.Millisecond))
	if rep != nil && *damageReport {
		fmt.Println(rep.String())
		for _, td := range rep.Tiles {
			fmt.Printf("  tile %d: %d/%d packets lost, %d concealed blocks, %d resyncs, region {%d %d %d %d}\n",
				td.Index, td.LostPackets, td.TotalPackets, len(td.LostBlocks), td.Resyncs,
				td.Region.X0, td.Region.Y0, td.Region.W, td.Region.H)
		}
	}
	if rep != nil && rep.Damaged() {
		fmt.Fprintf(os.Stderr,
			"j2kdec: stream damaged: %d/%d packets and %d/%d blocks lost, %d resyncs, %.1f%% of payload salvaged\n",
			rep.LostPackets, rep.TotalPackets, rep.LostBlocks, rep.TotalBlocks,
			rep.Resyncs, 100*rep.SalvagedRatio())
	}

	if rec != nil {
		op.Finish()
		spans := rec.TSpans()
		if *report {
			fmt.Printf("trace %s: simd kernels: %s (available: %s)\n",
				op.TraceID(), simd.Kernel(), strings.Join(simd.Available(), ", "))
			fmt.Print(obs.BuildReport(spans, *workers).Table())
			fmt.Print(rec.SLOTable())
		}
		if *metrics {
			fmt.Print(rec.MetricsTable())
		}
		if *traceOut != "" {
			check(obs.WriteChromeTraceFile(*traceOut, spans, rec.Counters()))
			fmt.Printf("trace: %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
				*traceOut, len(spans))
		}
	}
	if rep != nil && rep.Damaged() {
		os.Exit(cli.ExitPartial)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kdec:", err)
		os.Exit(cli.ExitCode(err))
	}
}
