// Command j2kdec decodes a JPEG2000 codestream produced by this
// library back to a raster image (BMP, or PGM/PPM by extension),
// verifying the full Tier-2 → Tier-1 → inverse DWT → inverse MCT path.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"j2kcell"
	"j2kcell/internal/bmp"
	"j2kcell/internal/pnm"
)

func main() {
	in := flag.String("in", "", "input .j2c codestream")
	out := flag.String("out", "out.bmp", "output image (.bmp, .pgm or .ppm)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "j2kdec: need -in file.j2c")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	check(err)
	img, err := j2kcell.Decode(data)
	check(err)
	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	switch strings.ToLower(filepath.Ext(*out)) {
	case ".pgm", ".ppm", ".pnm":
		check(pnm.Encode(f, img))
		fmt.Printf("%s: %dx%d decoded to %s\n", *in, img.W, img.H, *out)
		return
	}
	if len(img.Comps) == 1 {
		// Expand grayscale to RGB for the BMP writer.
		g := img
		img = j2kcell.NewImage(g.W, g.H, 3, g.Depth)
		for c := 0; c < 3; c++ {
			copy(img.Comps[c].Data, g.Comps[0].Data)
		}
	}
	check(bmp.Encode(f, img))
	fmt.Printf("%s: %dx%d decoded to %s\n", *in, img.W, img.H, *out)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "j2kdec:", err)
		os.Exit(1)
	}
}
