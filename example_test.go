package j2kcell_test

import (
	"fmt"

	"j2kcell"
)

// The basic lossless round trip: encode, decode, verify bit-exactness.
func ExampleEncode() {
	img := j2kcell.TestImage(64, 64, 1)
	data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
	if err != nil {
		panic(err)
	}
	back, err := j2kcell.Decode(data)
	if err != nil {
		panic(err)
	}
	fmt.Println("bit exact:", img.Equal(back))
	// Output: bit exact: true
}

// Rate-controlled lossy encoding: the stream never exceeds the budget.
func ExampleEncode_rateControl() {
	img := j2kcell.TestImage(128, 128, 2)
	raw := img.W * img.H * len(img.Comps)
	data, _, err := j2kcell.Encode(img, j2kcell.Options{Rate: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Println("within budget:", len(data) <= raw/10)
	// Output: within budget: true
}

// Window decoding reconstructs a sub-rectangle bit-exactly without
// entropy-decoding the rest of the image.
func ExampleDecodeWith() {
	img := j2kcell.TestImage(128, 128, 3)
	data, _, err := j2kcell.Encode(img, j2kcell.Options{Lossless: true})
	if err != nil {
		panic(err)
	}
	win, err := j2kcell.DecodeWith(data, j2kcell.DecodeOptions{
		Region: j2kcell.Rect{X0: 32, Y0: 48, W: 40, H: 24},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%dx%d window, exact: %v\n", win.W, win.H,
		win.Equal(img.SubImage(32, 48, 40, 24)))
	// Output: 40x24 window, exact: true
}

// Simulate runs the paper's parallel encoder on the modeled Cell/B.E.
// and reports where the cycles went.
func ExampleSimulate() {
	img := j2kcell.TestImage(128, 128, 4)
	res, err := j2kcell.Simulate(img, j2kcell.DefaultSimConfig(8, j2kcell.Options{Lossless: true}))
	if err != nil {
		panic(err)
	}
	fmt.Println("stages:", len(res.Stages) > 0, "— cycles:", res.Cycles > 0)
	// Output: stages: true — cycles: true
}
